"""Tests for the system-based evaluation drivers (Figures 1, 8-18, 16)."""

import pytest

from repro.analysis import SystemExperiment, format_comparison, scaling_experiment
from repro.lsm import simulator_system
from repro.storage import ExecutorConfig
from repro.workloads import UncertaintyBenchmark, Workload, expected_workload


@pytest.fixture(scope="module")
def experiment():
    return SystemExperiment(
        system=simulator_system(num_entries=6_000),
        executor_config=ExecutorConfig(queries_per_workload=300, seed=5),
        benchmark=UncertaintyBenchmark(size=200, seed=5),
        starts_per_policy=2,
        seed=5,
    )


@pytest.fixture(scope="module")
def w11_comparison(experiment):
    return experiment.run(expected_workload(11).workload, rho=1.0, include_writes=True,
                          workloads_per_session=1)


class TestSystemExperiment:
    def test_tunings_are_deployable(self, experiment):
        tunings = experiment.tunings_for(expected_workload(11).workload, rho=1.0)
        assert set(tunings) == {"nominal", "robust"}
        for tuning in tunings.values():
            assert float(tuning.size_ratio).is_integer()

    def test_comparison_has_six_sessions(self, w11_comparison):
        assert len(w11_comparison.sessions) == 6

    def test_each_session_reports_model_and_system_numbers(self, w11_comparison):
        for session in w11_comparison.sessions:
            assert set(session.model_ios) == {"nominal", "robust"}
            assert set(session.system_ios) == {"nominal", "robust"}
            assert set(session.latency_us) == {"nominal", "robust"}
            assert all(v >= 0 for v in session.system_ios.values())

    def test_model_predicts_robust_wins_write_session(self, w11_comparison):
        """Figure 11's mechanism: w11's nominal tuning has a huge size ratio,
        so the model predicts it loses badly once writes appear."""
        write_sessions = [s for s in w11_comparison.sessions if s.session == "write"]
        assert write_sessions
        session = write_sessions[0]
        assert session.model_ios["robust"] < session.model_ios["nominal"]

    def test_system_confirms_robust_wins_write_session(self, w11_comparison):
        write_sessions = [s for s in w11_comparison.sessions if s.session == "write"]
        session = write_sessions[0]
        assert session.system_ios["robust"] < session.system_ios["nominal"]

    def test_summary_reports_reductions(self, w11_comparison):
        summary = w11_comparison.summary()
        assert {"io_reduction", "latency_reduction"} <= set(summary)
        assert summary["io_reduction"] > 0.0  # robust reduces total I/O for w11

    def test_observed_divergence_recorded(self, w11_comparison):
        assert w11_comparison.observed_divergence >= 0.0

    def test_format_comparison_mentions_sessions_and_tunings(self, w11_comparison):
        text = format_comparison(w11_comparison)
        assert "write" in text
        assert "nominal" in text and "robust" in text
        assert "I/O reduction" in text


class TestMotivationExperiment:
    def test_figure1_shift_degrades_expected_tuning(self, experiment):
        """Figure 1: the range-heavy shift degrades the tuning that expected
        mostly point reads, and the session returns to normal afterwards."""
        expected = Workload(0.20, 0.20, 0.06, 0.54)
        shifted = Workload(0.02, 0.02, 0.41, 0.55)
        comparison = experiment.run_motivation(expected, shifted, rho=1.0,
                                               workloads_per_session=1)
        assert len(comparison.sessions) == 3
        nominal_io = [s.model_ios["nominal"] for s in comparison.sessions]
        # The middle (shifted) session is the expensive one for the expected tuning.
        assert nominal_io[1] > nominal_io[0]
        assert nominal_io[1] > nominal_io[2]


class TestUniformWorkload:
    def test_figure12_nominal_and_robust_are_similar(self, experiment):
        """Figure 12: with the uniform workload and tiny rho the two tunings
        nearly coincide, and so does their performance."""
        comparison = experiment.run(
            expected_workload(0).workload, rho=0.01, workloads_per_session=1
        )
        nominal = comparison.tunings["nominal"]
        robust = comparison.tunings["robust"]
        assert nominal.policy == robust.policy
        assert abs(nominal.size_ratio - robust.size_ratio) <= 2.0
        summary = comparison.summary()
        assert abs(summary["io_reduction"]) < 0.5


class TestScalingExperiment:
    def test_figure16_gap_is_stable_across_sizes(self):
        rows = scaling_experiment(
            expected_index=11,
            rho=0.25,
            sizes=(4_000, 12_000),
            queries_per_workload=200,
            seed=7,
        )
        assert len(rows) == 2
        for row in rows:
            assert row["nominal_io_per_query"] >= 0.0
            assert row["robust_io_per_query"] >= 0.0
        # Buffer memory grows with the database size for both tunings.
        assert rows[1]["nominal_buffer_bytes"] > rows[0]["nominal_buffer_bytes"]
        assert rows[1]["robust_buffer_bytes"] > rows[0]["robust_buffer_bytes"]
