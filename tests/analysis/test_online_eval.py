"""Tests for the online adaptive-tuning evaluation driver."""

import pytest

from repro.analysis import (
    AdaptiveExperiment,
    drifting_sequence,
    format_adaptive_comparison,
)
from repro.lsm import simulator_system
from repro.online import OnlineConfig
from repro.storage import ExecutorConfig
from repro.workloads import SessionGenerator, SessionType


@pytest.fixture(scope="module")
def comparison(bench_set, w11):
    experiment = AdaptiveExperiment(
        system=simulator_system(num_entries=4_000),
        executor_config=ExecutorConfig(queries_per_workload=250, seed=13),
        benchmark=bench_set,
        online=OnlineConfig(
            window=250,
            check_interval=50,
            min_observations=128,
            cooldown=512,
            confirm_checks=3,
            rho=1.0,
            mode="nominal",
            horizon_ops=100_000,
        ),
        seed=13,
    )
    return experiment.run(w11, rho=0.5, sessions_per_phase=2)


class TestDriftingSequence:
    def test_phases_are_sustained(self, bench_set, w11):
        generator = SessionGenerator(bench_set, seed=5)
        sequence = drifting_sequence(
            generator, w11, phases=("read", "write"), sessions_per_phase=3
        )
        assert len(sequence) == 6
        labels = [session.session_type for session in sequence]
        assert labels == [SessionType.READ] * 3 + [SessionType.WRITE] * 3

    def test_rejects_empty_phases(self, bench_set, w11):
        generator = SessionGenerator(bench_set, seed=5)
        with pytest.raises(ValueError):
            drifting_sequence(generator, w11, phases=())

    def test_returning_phases_get_distinct_names(self):
        from repro.analysis.online_eval import phase_names

        assert phase_names(["read", "write", "read"]) == [
            "phase-read",
            "phase-write",
            "phase-read-2",
        ]


class TestReturningPhase:
    def test_each_phase_occurrence_keeps_its_own_oracle(self, bench_set, w11):
        """An A→B→A sequence must not collapse the two A phases onto one
        per-phase static tuning."""
        experiment = AdaptiveExperiment(
            system=simulator_system(num_entries=3_000),
            executor_config=ExecutorConfig(queries_per_workload=120, seed=17),
            benchmark=bench_set,
            online=OnlineConfig(
                window=150,
                check_interval=50,
                min_observations=100,
                cooldown=400,
                confirm_checks=2,
                rho=1.0,
                mode="nominal",
            ),
            seed=17,
        )
        comparison = experiment.run(
            w11, rho=0.5, phases=("read", "write", "read"), sessions_per_phase=1
        )
        assert {"phase-read", "phase-write", "phase-read-2"} <= set(
            comparison.tunings
        )
        oracle_names = [row.oracle_name for row in comparison.sessions]
        assert oracle_names == ["phase-read", "phase-write", "phase-read-2"]
        # The converged metric covers both drifted-away-from-start phases.
        assert comparison.summary()["adaptive_vs_oracle_converged"] > 0


class TestAdaptiveComparison:
    def test_has_static_phase_and_adaptive_columns(self, comparison):
        assert {"nominal", "robust", "phase-read", "phase-write"} == set(
            comparison.tunings
        )
        for row in comparison.sessions:
            assert set(row.system_ios) == set(comparison.tunings) | {"adaptive"}

    def test_sessions_are_phase_tagged(self, comparison):
        phases = [row.phase for row in comparison.sessions]
        assert phases == ["read", "read", "write", "write"]
        assert all(
            row.oracle_name == f"phase-{row.phase}" for row in comparison.sessions
        )

    def test_summary_reports_the_headline_metrics(self, comparison):
        summary = comparison.summary()
        assert {
            "nominal_mean_io_per_query",
            "adaptive_mean_io_per_query",
            "oracle_mean_io_per_query",
            "adaptive_vs_nominal_reduction",
            "adaptive_vs_oracle_converged",
            "num_migrations",
        } <= set(summary)
        assert summary["oracle_mean_io_per_query"] > 0

    def test_to_dict_round_trips_to_json(self, comparison):
        import json

        payload = json.loads(json.dumps(comparison.to_dict()))
        assert payload["summary"]["num_migrations"] == comparison.num_migrations
        assert len(payload["sessions"]) == len(comparison.sessions)

    def test_format_renders_all_columns(self, comparison):
        text = format_adaptive_comparison(comparison)
        assert "adaptive" in text
        assert "phase-write" in text
        assert "mean I/Os per query" in text
