"""Parity regression tests tying the three policies' cost models together.

These pin the algebraic identities that keep the strategy layer honest:

* at ``T = 2`` tiering degenerates to leveling (one run per level, same
  merge amortisation), so their cost vectors must coincide exactly;
* with a single disk level lazy leveling *is* leveling;
* the vectorised ``cost_matrix`` grid pass must reproduce the scalar
  ``cost_vector`` path to ≤ 1e-9 across the whole design space.
"""

import numpy as np
import pytest

from repro.lsm import (
    ALL_POLICIES,
    LSMCostModel,
    LSMTuning,
    Policy,
    SystemConfig,
    simulator_system,
)

BITS_SAMPLES = (0.0, 1.5, 5.0, 10.0)


@pytest.fixture(scope="module")
def model() -> LSMCostModel:
    return LSMCostModel(SystemConfig())


class TestTieringLevelingParityAtTTwo:
    @pytest.mark.parametrize("bits", BITS_SAMPLES)
    def test_cost_vectors_coincide(self, model, bits):
        leveling = model.cost_vector(LSMTuning(2.0, bits, Policy.LEVELING))
        tiering = model.cost_vector(LSMTuning(2.0, bits, Policy.TIERING))
        np.testing.assert_allclose(leveling, tiering, atol=1e-12)

    @pytest.mark.parametrize("bits", BITS_SAMPLES)
    def test_lazy_leveling_joins_the_degenerate_point(self, model, bits):
        """At T = 2 every policy keeps one run per level above the last."""
        leveling = model.cost_vector(LSMTuning(2.0, bits, Policy.LEVELING))
        lazy = model.cost_vector(LSMTuning(2.0, bits, Policy.LAZY_LEVELING))
        np.testing.assert_allclose(leveling, lazy, atol=1e-12)

    def test_parity_holds_component_by_component(self, model):
        leveling = model.cost_breakdown(LSMTuning(2.0, 4.0, Policy.LEVELING)).as_dict()
        tiering = model.cost_breakdown(LSMTuning(2.0, 4.0, Policy.TIERING)).as_dict()
        for component, value in leveling.items():
            assert tiering[component] == pytest.approx(value, abs=1e-12), component


class TestLazyLevelingSingleLevelReduction:
    def test_single_level_tree_costs_match_leveling(self):
        # A tiny store with a huge size ratio collapses to one disk level.
        system = simulator_system(num_entries=50)
        model = LSMCostModel(system)
        lazy = LSMTuning(60.0, 2.0, Policy.LAZY_LEVELING)
        leveled = LSMTuning(60.0, 2.0, Policy.LEVELING)
        assert model.num_levels(lazy) == 1
        np.testing.assert_allclose(
            model.cost_vector(lazy), model.cost_vector(leveled), atol=1e-12
        )

    def test_multi_level_tree_costs_sit_between_the_classical_policies(self, model):
        tuning = {p: LSMTuning(6.0, 4.0, p) for p in ALL_POLICIES}
        assert model.num_levels(tuning[Policy.LAZY_LEVELING]) > 1
        # Writes: lazy leveling is cheaper than leveling, dearer than tiering.
        assert (
            model.write_cost(tuning[Policy.TIERING])
            < model.write_cost(tuning[Policy.LAZY_LEVELING])
            < model.write_cost(tuning[Policy.LEVELING])
        )
        # Reads: lazy leveling is cheaper than tiering, dearer than leveling.
        assert (
            model.empty_read_cost(tuning[Policy.LEVELING])
            < model.empty_read_cost(tuning[Policy.LAZY_LEVELING])
            < model.empty_read_cost(tuning[Policy.TIERING])
        )
        assert (
            model.range_read_cost(tuning[Policy.LEVELING])
            < model.range_read_cost(tuning[Policy.LAZY_LEVELING])
            < model.range_read_cost(tuning[Policy.TIERING])
        )

    def test_lazy_non_empty_reads_track_leveling_closely(self, model):
        """The largest level dominates residence, so Z1 stays near leveling."""
        lazy = model.non_empty_read_cost(LSMTuning(6.0, 6.0, Policy.LAZY_LEVELING))
        leveled = model.non_empty_read_cost(LSMTuning(6.0, 6.0, Policy.LEVELING))
        tiered = model.non_empty_read_cost(LSMTuning(6.0, 6.0, Policy.TIERING))
        assert abs(lazy - leveled) < abs(tiered - leveled)


class TestCostMatrixMatchesScalarPath:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
    def test_grid_parity_model_scale(self, model, policy):
        system = model.system
        ratios = np.arange(2.0, system.max_size_ratio + 1.0, 7.0)
        bits = np.linspace(0.0, system.max_bits_per_entry - 1e-6, 9)
        matrix = model.cost_matrix(ratios, bits, policy)
        assert matrix.shape == (ratios.size, bits.size, 4)
        for i, size_ratio in enumerate(ratios):
            for j, bits_per_entry in enumerate(bits):
                scalar = model.cost_vector(
                    LSMTuning(float(size_ratio), float(bits_per_entry), policy)
                )
                np.testing.assert_allclose(
                    matrix[i, j], scalar, atol=1e-9, rtol=1e-9
                )

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
    def test_grid_parity_simulator_scale(self, policy):
        system = simulator_system(num_entries=8_000)
        model = LSMCostModel(system)
        ratios = np.array([2.0, 3.0, 10.0, 42.0, 100.0])
        bits = np.linspace(0.0, system.max_bits_per_entry - 1e-6, 5)
        matrix = model.cost_matrix(ratios, bits, policy)
        for i, size_ratio in enumerate(ratios):
            for j, bits_per_entry in enumerate(bits):
                scalar = model.cost_vector(
                    LSMTuning(float(size_ratio), float(bits_per_entry), policy)
                )
                np.testing.assert_allclose(
                    matrix[i, j], scalar, atol=1e-9, rtol=1e-9
                )

    def test_workload_cost_matrix_is_the_dot_product(self, model):
        ratios = np.array([3.0, 9.0])
        bits = np.array([2.0, 6.0])
        weights = np.array([0.3, 0.3, 0.2, 0.2])
        costs = model.workload_cost_matrix(weights, ratios, bits, Policy.LAZY_LEVELING)
        for i, size_ratio in enumerate(ratios):
            for j, bits_per_entry in enumerate(bits):
                tuning = LSMTuning(size_ratio, bits_per_entry, Policy.LAZY_LEVELING)
                assert costs[i, j] == pytest.approx(
                    model.workload_cost(weights, tuning), rel=1e-12
                )

    def test_rejects_empty_grids(self, model):
        with pytest.raises(ValueError):
            model.cost_matrix(np.array([]), np.array([5.0]), Policy.LEVELING)

    def test_rejects_illegal_size_ratio(self, model):
        with pytest.raises(ValueError):
            model.cost_matrix(np.array([1.5]), np.array([5.0]), Policy.LEVELING)

    def test_rejects_over_budget_bits(self, model):
        too_many = model.system.total_bits_per_entry + 1.0
        with pytest.raises(ValueError):
            model.cost_matrix(np.array([4.0]), np.array([too_many]), Policy.LEVELING)
