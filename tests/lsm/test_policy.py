"""Tests for the compaction-policy enumeration and strategy objects."""

import numpy as np
import pytest

from repro.lsm import (
    ALL_POLICIES,
    CLASSIC_POLICIES,
    CompactionPolicy,
    FluidPolicy,
    LazyLevelingPolicy,
    LevelingPolicy,
    OneLevelingPolicy,
    Policy,
    PolicySpec,
    TieringPolicy,
    expand_policy_specs,
    get_policy,
)


class TestPolicyFromValue:
    def test_accepts_enum_member(self):
        assert Policy.from_value(Policy.LEVELING) is Policy.LEVELING

    def test_accepts_canonical_strings(self):
        assert Policy.from_value("leveling") is Policy.LEVELING
        assert Policy.from_value("tiering") is Policy.TIERING
        assert Policy.from_value("lazy-leveling") is Policy.LAZY_LEVELING

    def test_accepts_aliases(self):
        assert Policy.from_value("level") is Policy.LEVELING
        assert Policy.from_value("leveled") is Policy.LEVELING
        assert Policy.from_value("L") is Policy.LEVELING
        assert Policy.from_value("tier") is Policy.TIERING
        assert Policy.from_value("tiered") is Policy.TIERING
        assert Policy.from_value("T") is Policy.TIERING
        assert Policy.from_value("lazy") is Policy.LAZY_LEVELING
        assert Policy.from_value("lazy_leveling") is Policy.LAZY_LEVELING
        assert Policy.from_value("ll") is Policy.LAZY_LEVELING
        assert Policy.from_value("one-leveling") is Policy.ONE_LEVELING
        assert Policy.from_value("1leveling") is Policy.ONE_LEVELING
        assert Policy.from_value("1l") is Policy.ONE_LEVELING
        assert Policy.from_value("k-hybrid") is Policy.FLUID
        assert Policy.from_value("fluid-lsm") is Policy.FLUID
        assert Policy.from_value("f") is Policy.FLUID

    def test_is_case_insensitive(self):
        assert Policy.from_value("LEVELING") is Policy.LEVELING
        assert Policy.from_value("Tiering") is Policy.TIERING
        assert Policy.from_value("Lazy-Leveling") is Policy.LAZY_LEVELING

    def test_strips_whitespace(self):
        assert Policy.from_value("  leveling  ") is Policy.LEVELING

    def test_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            Policy.from_value("fifo")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            Policy.from_value(42)


class TestPolicyCollection:
    def test_all_policies_has_every_member(self):
        assert set(ALL_POLICIES) == set(Policy)

    def test_all_policies_order_is_stable(self):
        assert ALL_POLICIES[0] is Policy.LEVELING
        assert ALL_POLICIES[1] is Policy.TIERING
        assert ALL_POLICIES[2] is Policy.LAZY_LEVELING
        assert ALL_POLICIES[3] is Policy.ONE_LEVELING
        assert ALL_POLICIES[4] is Policy.FLUID

    def test_classic_policies_is_the_paper_pair(self):
        assert CLASSIC_POLICIES == (Policy.LEVELING, Policy.TIERING)

    def test_str_rendering(self):
        assert str(Policy.LEVELING) == "leveling"
        assert str(Policy.TIERING) == "tiering"
        assert str(Policy.LAZY_LEVELING) == "lazy-leveling"

    def test_value_round_trip(self):
        for policy in ALL_POLICIES:
            assert Policy.from_value(policy.value) is policy


class TestStrategyResolution:
    def test_strategy_property_returns_singletons(self):
        assert Policy.LEVELING.strategy is Policy.LEVELING.strategy
        assert isinstance(Policy.LEVELING.strategy, LevelingPolicy)
        assert isinstance(Policy.TIERING.strategy, TieringPolicy)
        assert isinstance(Policy.LAZY_LEVELING.strategy, LazyLevelingPolicy)

    def test_get_policy_accepts_strings(self):
        assert get_policy("tiered") is Policy.TIERING.strategy

    def test_every_strategy_knows_its_identity(self):
        for policy in ALL_POLICIES:
            strategy = policy.strategy
            assert isinstance(strategy, CompactionPolicy)
            assert strategy.policy is policy
            assert strategy.name == policy.value


class TestAnalyticalQuantities:
    LEVELS = np.arange(1.0, 6.0)

    def test_leveling_has_one_run_per_level(self):
        runs = Policy.LEVELING.strategy.runs_per_level(7.0, self.LEVELS, 5.0)
        assert np.all(runs == 1.0)

    def test_tiering_has_t_minus_one_runs_per_level(self):
        runs = Policy.TIERING.strategy.runs_per_level(7.0, self.LEVELS, 5.0)
        assert np.all(runs == 6.0)

    def test_lazy_leveling_mixes_both(self):
        runs = Policy.LAZY_LEVELING.strategy.runs_per_level(7.0, self.LEVELS, 5.0)
        assert np.all(runs[:-1] == 6.0)
        assert runs[-1] == 1.0

    def test_merge_factors_match_the_classical_formulas(self):
        leveling = Policy.LEVELING.strategy.merge_factor(8.0, self.LEVELS, 5.0)
        tiering = Policy.TIERING.strategy.merge_factor(8.0, self.LEVELS, 5.0)
        assert np.allclose(leveling, 3.5)
        assert np.allclose(tiering, 7.0 / 8.0)

    def test_lazy_merge_factor_is_leveled_on_the_largest_level(self):
        lazy = Policy.LAZY_LEVELING.strategy.merge_factor(8.0, self.LEVELS, 5.0)
        assert np.allclose(lazy[:-1], 7.0 / 8.0)
        assert lazy[-1] == pytest.approx(3.5)

    def test_quantities_broadcast_over_size_ratio_grids(self):
        ratios = np.array([2.0, 5.0, 10.0]).reshape(-1, 1)
        for policy in ALL_POLICIES:
            runs = policy.strategy.runs_per_level(ratios, self.LEVELS, 5.0)
            merges = policy.strategy.merge_factor(ratios, self.LEVELS, 5.0)
            assert runs.shape == (3, 5)
            assert merges.shape == (3, 5)

    def test_single_level_lazy_equals_leveling(self):
        one = np.array([1.0])
        lazy = Policy.LAZY_LEVELING.strategy
        leveled = Policy.LEVELING.strategy
        assert lazy.runs_per_level(9.0, one, 1.0) == leveled.runs_per_level(9.0, one, 1.0)
        assert lazy.merge_factor(9.0, one, 1.0) == leveled.merge_factor(9.0, one, 1.0)


class TestRuntimeHooks:
    def test_leveling_always_merges_on_arrival(self):
        strategy = Policy.LEVELING.strategy
        assert strategy.merges_on_arrival(1, 4)
        assert strategy.merges_on_arrival(4, 4)

    def test_tiering_never_merges_on_arrival(self):
        strategy = Policy.TIERING.strategy
        assert not strategy.merges_on_arrival(1, 4)
        assert not strategy.merges_on_arrival(4, 4)

    def test_lazy_leveling_merges_only_on_the_last_level(self):
        strategy = Policy.LAZY_LEVELING.strategy
        assert not strategy.merges_on_arrival(1, 4)
        assert not strategy.merges_on_arrival(3, 4)
        assert strategy.merges_on_arrival(4, 4)
        assert strategy.merges_on_arrival(5, 4)

    def test_max_resident_runs_tracks_the_size_ratio(self):
        for policy in ALL_POLICIES:
            assert policy.strategy.max_resident_runs(5) == 4
            assert policy.strategy.max_resident_runs(2) == 1

    def test_fill_fractions_follow_the_merge_behaviour(self):
        headroom = 0.85
        assert Policy.LEVELING.strategy.bulk_load_fill_fraction(1, 4, headroom) == headroom
        assert Policy.TIERING.strategy.bulk_load_fill_fraction(1, 4, headroom) == 1.0
        lazy = Policy.LAZY_LEVELING.strategy
        assert lazy.bulk_load_fill_fraction(2, 4, headroom) == 1.0
        assert lazy.bulk_load_fill_fraction(4, 4, headroom) == headroom

    def test_one_leveling_merges_only_on_the_first_level(self):
        strategy = Policy.ONE_LEVELING.strategy
        assert isinstance(strategy, OneLevelingPolicy)
        assert strategy.merges_on_arrival(1, 4)
        assert not strategy.merges_on_arrival(2, 4)
        assert not strategy.merges_on_arrival(4, 4)
        # A single-level tree degenerates to plain leveling.
        assert strategy.merges_on_arrival(1, 1)

    def test_fluid_merges_on_arrival_tracks_unit_bounds(self):
        assert FluidPolicy(k_bound=1, z_bound=1).merges_on_arrival(1, 4)
        assert FluidPolicy(k_bound=1, z_bound=1).merges_on_arrival(4, 4)
        assert not FluidPolicy(k_bound=3, z_bound=1).merges_on_arrival(1, 4)
        assert FluidPolicy(k_bound=3, z_bound=1).merges_on_arrival(4, 4)
        assert not FluidPolicy(k_bound=3, z_bound=2).merges_on_arrival(4, 4)
        # The default fluid instance is lazy-leveling shaped: tiered upper
        # levels, one leveled run at the largest.
        assert not Policy.FLUID.strategy.merges_on_arrival(1, 4)
        assert Policy.FLUID.strategy.merges_on_arrival(4, 4)

    def test_fluid_per_level_run_triggers(self):
        fluid = FluidPolicy(k_bound=3, z_bound=2)
        assert fluid.max_resident_runs(8, level=1, last_level=4) == 3
        assert fluid.max_resident_runs(8, level=4, last_level=4) == 2
        # Bounds clamp to the feasible [1, T-1] range.
        assert fluid.max_resident_runs(3, level=1, last_level=4) == 2
        assert fluid.max_resident_runs(2, level=1, last_level=4) == 1
        assert FluidPolicy(k_bound=64).max_resident_runs(5, 1, 4) == 4

    def test_only_fluid_compacts_within_a_level(self):
        for policy in (
            Policy.LEVELING, Policy.TIERING, Policy.LAZY_LEVELING, Policy.ONE_LEVELING
        ):
            assert not policy.strategy.compacts_within_level(2, 4)
        assert Policy.FLUID.strategy.compacts_within_level(2, 4)


class TestFluidAnalytics:
    LEVELS = np.arange(1.0, 6.0)

    def test_runs_follow_the_bounds(self):
        fluid = FluidPolicy(k_bound=3, z_bound=2)
        runs = fluid.runs_per_level(7.0, self.LEVELS, 5.0)
        assert np.all(runs[:-1] == 3.0)
        assert runs[-1] == 2.0

    def test_merge_factor_interpolates_the_classical_formulas(self):
        fluid = FluidPolicy(k_bound=3, z_bound=1)
        merges = fluid.merge_factor(9.0, self.LEVELS, 5.0)
        assert np.allclose(merges[:-1], 8.0 / 4.0)
        assert merges[-1] == pytest.approx(4.0)

    def test_bounds_clamp_to_the_feasible_range(self):
        fluid = FluidPolicy(k_bound=64, z_bound=16)
        runs = fluid.runs_per_level(5.0, self.LEVELS, 5.0)
        assert np.all(runs == 4.0)  # clamped to T - 1

    def test_one_leveling_levels_only_the_first(self):
        one = Policy.ONE_LEVELING.strategy
        runs = one.runs_per_level(7.0, self.LEVELS, 5.0)
        assert runs[0] == 1.0
        assert np.all(runs[1:] == 6.0)
        merges = one.merge_factor(8.0, self.LEVELS, 5.0)
        assert merges[0] == pytest.approx(3.5)
        assert np.allclose(merges[1:], 7.0 / 8.0)


class TestPolicySpecs:
    def test_spec_of_coerces_strings_and_enums(self):
        assert PolicySpec.of("tiering").policy is Policy.TIERING
        spec = PolicySpec(Policy.FLUID, k_bound=4, z_bound=2)
        assert PolicySpec.of(spec) is spec

    def test_classical_specs_reject_run_bounds(self):
        with pytest.raises(ValueError):
            PolicySpec(Policy.LEVELING, k_bound=2)

    def test_spec_names_are_stable(self):
        assert PolicySpec(Policy.LEVELING).name == "leveling"
        assert PolicySpec(Policy.FLUID, k_bound=4, z_bound=1).name == "fluid[K=4,Z=1]"

    def test_expansion_covers_the_classical_corners(self):
        specs = expand_policy_specs([Policy.FLUID], max_size_ratio=20)
        pairs = {(s.k_bound, s.z_bound) for s in specs}
        assert (1.0, 1.0) in pairs  # leveling corner
        assert (19.0, 19.0) in pairs  # tiering corner (K = Z = T - 1)
        assert (19.0, 1.0) in pairs  # lazy-leveling corner
        assert all(s.policy is Policy.FLUID for s in specs)

    def test_expansion_passes_classical_policies_through(self):
        specs = expand_policy_specs([Policy.LEVELING, Policy.TIERING])
        assert [s.policy for s in specs] == [Policy.LEVELING, Policy.TIERING]
        assert all(s.k_bound is None for s in specs)

    def test_explicit_specs_are_kept_verbatim(self):
        pinned = PolicySpec(Policy.FLUID, k_bound=7, z_bound=3)
        specs = expand_policy_specs([pinned])
        assert specs == (pinned,)

    def test_strategy_binding_for_tuning(self):
        from repro.lsm import LSMTuning

        tuning = LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=3, z_bound=2)
        strategy = tuning.strategy
        assert isinstance(strategy, FluidPolicy)
        assert strategy.k_bound == 3.0
        assert strategy.z_bound == 2.0
        # Classical tunings keep their stateless singletons.
        classic = LSMTuning(8.0, 4.0, Policy.LEVELING)
        assert classic.strategy is Policy.LEVELING.strategy


class TestFluidVectorBounds:
    """Per-level K_i vectors: FluidPolicy as a thin view over the vector."""

    def test_runs_per_level_reads_the_vector(self):
        fluid = FluidPolicy(k_bounds=(4.0, 2.0, 1.0))
        runs = fluid.runs_per_level(8.0, np.arange(1.0, 6.0), 5.0)
        # Levels 1..3 read the vector, level 4 reuses the last element,
        # level 5 (largest) reads Z = 1.
        np.testing.assert_allclose(runs, [4.0, 2.0, 1.0, 1.0, 1.0])

    def test_merge_factor_reads_the_vector(self):
        fluid = FluidPolicy(k_bounds=(3.0, 1.0), z_bound=1.0)
        merges = fluid.merge_factor(8.0, np.arange(1.0, 5.0), 4.0)
        np.testing.assert_allclose(merges, [7.0 / 4.0, 7.0 / 2.0, 7.0 / 2.0, 7.0 / 2.0])

    def test_vector_clamps_per_level_to_the_feasible_range(self):
        fluid = FluidPolicy(k_bounds=(64.0, 2.0))
        runs = fluid.runs_per_level(4.0, np.arange(1.0, 4.0), 3.0)
        np.testing.assert_allclose(runs, [3.0, 2.0, 1.0])  # 64 capped at T - 1

    def test_uniform_vector_matches_the_scalar_everywhere(self):
        scalar = FluidPolicy(k_bound=3.0, z_bound=2.0)
        vector = FluidPolicy(k_bounds=(3.0,) * 8, z_bound=2.0)
        ratios = np.array([2.0, 3.5, 8.0, 40.0]).reshape(-1, 1)
        levels = np.arange(1.0, 7.0).reshape(1, -1)
        np.testing.assert_array_equal(
            scalar.runs_per_level(ratios, levels, 6.0),
            vector.runs_per_level(ratios, levels, 6.0),
        )
        np.testing.assert_array_equal(
            scalar.merge_factor(ratios, levels, 6.0),
            vector.merge_factor(ratios, levels, 6.0),
        )

    def test_runtime_hooks_answer_per_level(self):
        fluid = FluidPolicy(k_bounds=(4.0, 1.0), z_bound=1.0)
        assert not fluid.merges_on_arrival(1, 4)  # bound 4: stacks
        assert fluid.merges_on_arrival(2, 4)  # bound 1: leveled
        assert fluid.merges_on_arrival(3, 4)  # reuses last element (1)
        assert fluid.merges_on_arrival(4, 4)  # Z = 1
        assert fluid.max_resident_runs(8, 1, 4) == 4
        assert fluid.max_resident_runs(8, 2, 4) == 1
        assert fluid.max_resident_runs(3, 1, 4) == 2  # clamped to T - 1

    def test_rejects_bad_vectors(self):
        with pytest.raises(ValueError):
            FluidPolicy(k_bounds=())
        with pytest.raises(ValueError):
            FluidPolicy(k_bounds=(2.0, 0.5))
        with pytest.raises(ValueError):
            FluidPolicy(k_bound=2.0, k_bounds=(2.0,))

    def test_for_tuning_carries_the_vector(self):
        from repro.lsm import LSMTuning

        tuning = LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(4.0, 2.0), z_bound=2.0)
        bound = tuning.strategy
        assert isinstance(bound, FluidPolicy)
        assert bound.k_bounds == (4.0, 2.0)
        assert bound.z_bound == 2.0


class TestVectorPolicySpecs:
    def test_vector_specs_are_hashable_and_named(self):
        spec = PolicySpec(Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=2.0)
        assert spec.name == "fluid[K=(4,2,1),Z=2]"
        assert hash(spec) == hash(
            PolicySpec(Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=2.0)
        )

    def test_vector_specs_coerce_lists_to_tuples(self):
        spec = PolicySpec(Policy.FLUID, k_bounds=[4, 2])
        assert spec.k_bounds == (4.0, 2.0)

    def test_scalar_and_vector_bounds_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            PolicySpec(Policy.FLUID, k_bound=4.0, k_bounds=(4.0,))

    def test_classical_specs_reject_vectors(self):
        with pytest.raises(ValueError):
            PolicySpec(Policy.LEVELING, k_bounds=(2.0,))

    def test_vector_spec_strategy_is_bound_to_the_vector(self):
        strategy = PolicySpec(Policy.FLUID, k_bounds=(4.0, 1.0)).strategy
        assert isinstance(strategy, FluidPolicy)
        assert strategy.k_bounds == (4.0, 1.0)


class TestVectorFamilies:
    def test_halving_ladder_descends_to_one(self):
        from repro.lsm import halving_ladder

        assert halving_ladder(8) == (8.0, 4.0, 2.0, 1.0)
        assert halving_ladder(3) == (3.0, 2.0, 1.0)
        assert halving_ladder(1) == (1.0,)

    def test_expansion_without_the_flag_is_unchanged(self):
        flat = expand_policy_specs([Policy.FLUID], max_size_ratio=40.0)
        assert all(spec.k_bounds is None for spec in flat)

    def test_expansion_with_the_flag_adds_vector_families(self):
        specs = expand_policy_specs(
            [Policy.FLUID], max_size_ratio=40.0, include_k_vectors=True
        )
        vectors = [spec for spec in specs if spec.k_bounds is not None]
        assert vectors, "vector families must join the sweep"
        # Front-loaded ladders: non-increasing, peak > 1, end at 1.
        ladders = [
            spec.k_bounds
            for spec in vectors
            if len(set(spec.k_bounds)) > 1
            and tuple(sorted(spec.k_bounds, reverse=True)) == spec.k_bounds
        ]
        assert ladders
        # Single-level perturbations: exactly one bumped level.
        bumps = [
            spec.k_bounds
            for spec in vectors
            if sum(1 for bound in spec.k_bounds if bound > 1.0) == 1
            and spec.k_bounds[-1] == 1.0
        ]
        assert bumps
        # The scalar grid still precedes the vector families.
        assert specs[0].k_bounds is None

    def test_vector_families_respect_the_ratio_cap(self):
        from repro.lsm import fluid_vector_specs

        for spec in fluid_vector_specs(max_size_ratio=5.0):
            assert all(bound <= 4.0 for bound in spec.k_bounds)

    def test_degenerate_cap_produces_no_vector_specs(self):
        """At max_size_ratio <= 2 every bound clamps to 1, so the families
        would only duplicate the all-leveled uniform vectors the scalar
        grid already covers — the expansion must emit nothing."""
        from repro.lsm import fluid_vector_specs

        assert fluid_vector_specs(max_size_ratio=2.0) == ()

    def test_explicit_vector_specs_pass_through(self):
        pinned = PolicySpec(Policy.FLUID, k_bounds=(9.0, 3.0, 1.0))
        specs = expand_policy_specs([pinned])
        assert specs == (pinned,)
