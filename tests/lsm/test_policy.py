"""Tests for the compaction-policy enumeration and strategy objects."""

import numpy as np
import pytest

from repro.lsm import (
    ALL_POLICIES,
    CLASSIC_POLICIES,
    CompactionPolicy,
    LazyLevelingPolicy,
    LevelingPolicy,
    Policy,
    TieringPolicy,
    get_policy,
)


class TestPolicyFromValue:
    def test_accepts_enum_member(self):
        assert Policy.from_value(Policy.LEVELING) is Policy.LEVELING

    def test_accepts_canonical_strings(self):
        assert Policy.from_value("leveling") is Policy.LEVELING
        assert Policy.from_value("tiering") is Policy.TIERING
        assert Policy.from_value("lazy-leveling") is Policy.LAZY_LEVELING

    def test_accepts_aliases(self):
        assert Policy.from_value("level") is Policy.LEVELING
        assert Policy.from_value("leveled") is Policy.LEVELING
        assert Policy.from_value("L") is Policy.LEVELING
        assert Policy.from_value("tier") is Policy.TIERING
        assert Policy.from_value("tiered") is Policy.TIERING
        assert Policy.from_value("T") is Policy.TIERING
        assert Policy.from_value("lazy") is Policy.LAZY_LEVELING
        assert Policy.from_value("lazy_leveling") is Policy.LAZY_LEVELING
        assert Policy.from_value("ll") is Policy.LAZY_LEVELING

    def test_is_case_insensitive(self):
        assert Policy.from_value("LEVELING") is Policy.LEVELING
        assert Policy.from_value("Tiering") is Policy.TIERING
        assert Policy.from_value("Lazy-Leveling") is Policy.LAZY_LEVELING

    def test_strips_whitespace(self):
        assert Policy.from_value("  leveling  ") is Policy.LEVELING

    def test_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            Policy.from_value("fifo")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            Policy.from_value(42)


class TestPolicyCollection:
    def test_all_policies_has_every_member(self):
        assert set(ALL_POLICIES) == set(Policy)

    def test_all_policies_order_is_stable(self):
        assert ALL_POLICIES[0] is Policy.LEVELING
        assert ALL_POLICIES[1] is Policy.TIERING
        assert ALL_POLICIES[2] is Policy.LAZY_LEVELING

    def test_classic_policies_is_the_paper_pair(self):
        assert CLASSIC_POLICIES == (Policy.LEVELING, Policy.TIERING)

    def test_str_rendering(self):
        assert str(Policy.LEVELING) == "leveling"
        assert str(Policy.TIERING) == "tiering"
        assert str(Policy.LAZY_LEVELING) == "lazy-leveling"

    def test_value_round_trip(self):
        for policy in ALL_POLICIES:
            assert Policy.from_value(policy.value) is policy


class TestStrategyResolution:
    def test_strategy_property_returns_singletons(self):
        assert Policy.LEVELING.strategy is Policy.LEVELING.strategy
        assert isinstance(Policy.LEVELING.strategy, LevelingPolicy)
        assert isinstance(Policy.TIERING.strategy, TieringPolicy)
        assert isinstance(Policy.LAZY_LEVELING.strategy, LazyLevelingPolicy)

    def test_get_policy_accepts_strings(self):
        assert get_policy("tiered") is Policy.TIERING.strategy

    def test_every_strategy_knows_its_identity(self):
        for policy in ALL_POLICIES:
            strategy = policy.strategy
            assert isinstance(strategy, CompactionPolicy)
            assert strategy.policy is policy
            assert strategy.name == policy.value


class TestAnalyticalQuantities:
    LEVELS = np.arange(1.0, 6.0)

    def test_leveling_has_one_run_per_level(self):
        runs = Policy.LEVELING.strategy.runs_per_level(7.0, self.LEVELS, 5.0)
        assert np.all(runs == 1.0)

    def test_tiering_has_t_minus_one_runs_per_level(self):
        runs = Policy.TIERING.strategy.runs_per_level(7.0, self.LEVELS, 5.0)
        assert np.all(runs == 6.0)

    def test_lazy_leveling_mixes_both(self):
        runs = Policy.LAZY_LEVELING.strategy.runs_per_level(7.0, self.LEVELS, 5.0)
        assert np.all(runs[:-1] == 6.0)
        assert runs[-1] == 1.0

    def test_merge_factors_match_the_classical_formulas(self):
        leveling = Policy.LEVELING.strategy.merge_factor(8.0, self.LEVELS, 5.0)
        tiering = Policy.TIERING.strategy.merge_factor(8.0, self.LEVELS, 5.0)
        assert np.allclose(leveling, 3.5)
        assert np.allclose(tiering, 7.0 / 8.0)

    def test_lazy_merge_factor_is_leveled_on_the_largest_level(self):
        lazy = Policy.LAZY_LEVELING.strategy.merge_factor(8.0, self.LEVELS, 5.0)
        assert np.allclose(lazy[:-1], 7.0 / 8.0)
        assert lazy[-1] == pytest.approx(3.5)

    def test_quantities_broadcast_over_size_ratio_grids(self):
        ratios = np.array([2.0, 5.0, 10.0]).reshape(-1, 1)
        for policy in ALL_POLICIES:
            runs = policy.strategy.runs_per_level(ratios, self.LEVELS, 5.0)
            merges = policy.strategy.merge_factor(ratios, self.LEVELS, 5.0)
            assert runs.shape == (3, 5)
            assert merges.shape == (3, 5)

    def test_single_level_lazy_equals_leveling(self):
        one = np.array([1.0])
        lazy = Policy.LAZY_LEVELING.strategy
        leveled = Policy.LEVELING.strategy
        assert lazy.runs_per_level(9.0, one, 1.0) == leveled.runs_per_level(9.0, one, 1.0)
        assert lazy.merge_factor(9.0, one, 1.0) == leveled.merge_factor(9.0, one, 1.0)


class TestRuntimeHooks:
    def test_leveling_always_merges_on_arrival(self):
        strategy = Policy.LEVELING.strategy
        assert strategy.merges_on_arrival(1, 4)
        assert strategy.merges_on_arrival(4, 4)

    def test_tiering_never_merges_on_arrival(self):
        strategy = Policy.TIERING.strategy
        assert not strategy.merges_on_arrival(1, 4)
        assert not strategy.merges_on_arrival(4, 4)

    def test_lazy_leveling_merges_only_on_the_last_level(self):
        strategy = Policy.LAZY_LEVELING.strategy
        assert not strategy.merges_on_arrival(1, 4)
        assert not strategy.merges_on_arrival(3, 4)
        assert strategy.merges_on_arrival(4, 4)
        assert strategy.merges_on_arrival(5, 4)

    def test_max_resident_runs_tracks_the_size_ratio(self):
        for policy in ALL_POLICIES:
            assert policy.strategy.max_resident_runs(5) == 4
            assert policy.strategy.max_resident_runs(2) == 1

    def test_fill_fractions_follow_the_merge_behaviour(self):
        headroom = 0.85
        assert Policy.LEVELING.strategy.bulk_load_fill_fraction(1, 4, headroom) == headroom
        assert Policy.TIERING.strategy.bulk_load_fill_fraction(1, 4, headroom) == 1.0
        lazy = Policy.LAZY_LEVELING.strategy
        assert lazy.bulk_load_fill_fraction(2, 4, headroom) == 1.0
        assert lazy.bulk_load_fill_fraction(4, 4, headroom) == headroom
