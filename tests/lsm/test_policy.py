"""Tests for the compaction-policy enumeration."""

import pytest

from repro.lsm import ALL_POLICIES, Policy


class TestPolicyFromValue:
    def test_accepts_enum_member(self):
        assert Policy.from_value(Policy.LEVELING) is Policy.LEVELING

    def test_accepts_canonical_strings(self):
        assert Policy.from_value("leveling") is Policy.LEVELING
        assert Policy.from_value("tiering") is Policy.TIERING

    def test_accepts_aliases(self):
        assert Policy.from_value("level") is Policy.LEVELING
        assert Policy.from_value("leveled") is Policy.LEVELING
        assert Policy.from_value("L") is Policy.LEVELING
        assert Policy.from_value("tier") is Policy.TIERING
        assert Policy.from_value("tiered") is Policy.TIERING
        assert Policy.from_value("T") is Policy.TIERING

    def test_is_case_insensitive(self):
        assert Policy.from_value("LEVELING") is Policy.LEVELING
        assert Policy.from_value("Tiering") is Policy.TIERING

    def test_strips_whitespace(self):
        assert Policy.from_value("  leveling  ") is Policy.LEVELING

    def test_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            Policy.from_value("lazy-leveling")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            Policy.from_value(42)


class TestPolicyCollection:
    def test_all_policies_has_both(self):
        assert set(ALL_POLICIES) == {Policy.LEVELING, Policy.TIERING}

    def test_all_policies_order_is_stable(self):
        assert ALL_POLICIES[0] is Policy.LEVELING
        assert ALL_POLICIES[1] is Policy.TIERING

    def test_str_rendering(self):
        assert str(Policy.LEVELING) == "leveling"
        assert str(Policy.TIERING) == "tiering"

    def test_value_round_trip(self):
        for policy in ALL_POLICIES:
            assert Policy.from_value(policy.value) is policy
