"""Tests for the analytical cost model (Equations 2, 12, 14, 15, 16)."""

import numpy as np
import pytest

from repro.lsm import LSMCostModel, LSMTuning, Policy, SystemConfig
from repro.workloads import Workload, expected_workload


@pytest.fixture()
def model(system: SystemConfig) -> LSMCostModel:
    return LSMCostModel(system)


class TestCostVector:
    def test_cost_vector_has_four_components(self, model, leveling_tuning):
        assert model.cost_vector(leveling_tuning).shape == (4,)

    def test_all_costs_positive(self, model, leveling_tuning, tiering_tuning):
        for tuning in (leveling_tuning, tiering_tuning):
            assert np.all(model.cost_vector(tuning) > 0.0)

    def test_breakdown_matches_vector(self, model, leveling_tuning):
        breakdown = model.cost_breakdown(leveling_tuning)
        assert np.allclose(breakdown.as_array(), model.cost_vector(leveling_tuning))

    def test_breakdown_dict_keys(self, model, leveling_tuning):
        keys = set(model.cost_breakdown(leveling_tuning).as_dict())
        assert keys == {"empty_read", "non_empty_read", "range", "write"}


class TestEmptyReadCost:
    def test_tiering_costs_more_than_leveling(self, model):
        leveling = LSMTuning(5.0, 5.0, Policy.LEVELING)
        tiering = LSMTuning(5.0, 5.0, Policy.TIERING)
        assert model.empty_read_cost(tiering) > model.empty_read_cost(leveling)

    def test_tiering_multiplier_is_t_minus_one(self, model):
        leveling = LSMTuning(6.0, 5.0, Policy.LEVELING)
        tiering = LSMTuning(6.0, 5.0, Policy.TIERING)
        assert model.empty_read_cost(tiering) == pytest.approx(
            5.0 * model.empty_read_cost(leveling)
        )

    def test_more_filter_memory_reduces_cost(self, model):
        low = LSMTuning(5.0, 1.0, Policy.LEVELING)
        high = LSMTuning(5.0, 10.0, Policy.LEVELING)
        assert model.empty_read_cost(high) < model.empty_read_cost(low)

    def test_equals_sum_of_false_positive_rates_for_leveling(self, model):
        tuning = LSMTuning(5.0, 5.0, Policy.LEVELING)
        assert model.empty_read_cost(tuning) == pytest.approx(
            float(np.sum(model.false_positive_rates(tuning)))
        )

    def test_zero_filter_memory_cost_bounded_by_level_count(self, model):
        # With no filter memory an empty lookup may probe every level; the
        # clipped Monkey closed form keeps the cost within (0, L].
        tuning = LSMTuning(5.0, 0.0, Policy.LEVELING)
        levels = model.num_levels(tuning)
        cost = model.empty_read_cost(tuning)
        assert 1.0 <= cost <= float(levels)


class TestNonEmptyReadCost:
    def test_at_least_one_io(self, model, leveling_tuning, tiering_tuning):
        # A successful lookup always pays the I/O that fetches the entry.
        assert model.non_empty_read_cost(leveling_tuning) >= 1.0
        assert model.non_empty_read_cost(tiering_tuning) >= 1.0

    def test_close_to_one_with_ample_filters(self, model):
        tuning = LSMTuning(5.0, 16.0, Policy.LEVELING)
        assert model.non_empty_read_cost(tuning) == pytest.approx(1.0, abs=0.05)

    def test_leveling_cheaper_than_tiering(self, model):
        leveling = LSMTuning(8.0, 3.0, Policy.LEVELING)
        tiering = LSMTuning(8.0, 3.0, Policy.TIERING)
        assert model.non_empty_read_cost(leveling) < model.non_empty_read_cost(tiering)

    def test_bounded_by_empty_read_plus_one(self, model):
        # A successful lookup can waste at most what an empty one wastes.
        for policy in (Policy.LEVELING, Policy.TIERING):
            tuning = LSMTuning(6.0, 4.0, policy)
            assert model.non_empty_read_cost(tuning) <= model.empty_read_cost(tuning) + 1.0


class TestRangeCost:
    def test_leveling_pays_one_seek_per_level(self, model):
        tuning = LSMTuning(5.0, 5.0, Policy.LEVELING)
        assert model.range_read_cost(tuning) == pytest.approx(
            float(model.num_levels(tuning))
        )

    def test_tiering_pays_t_minus_one_seeks_per_level(self, model):
        tuning = LSMTuning(5.0, 5.0, Policy.TIERING)
        assert model.range_read_cost(tuning) == pytest.approx(
            float(model.num_levels(tuning)) * 4.0
        )

    def test_selectivity_adds_scan_pages(self):
        selective = SystemConfig(range_selectivity=0.001)
        model = LSMCostModel(selective)
        tuning = LSMTuning(5.0, 5.0, Policy.LEVELING)
        scan_pages = 0.001 * selective.num_entries / selective.entries_per_page
        assert model.range_read_cost(tuning) == pytest.approx(
            model.num_levels(tuning) + scan_pages
        )

    def test_larger_size_ratio_reduces_leveling_range_cost(self, model):
        shallow = LSMTuning(50.0, 5.0, Policy.LEVELING)
        deep = LSMTuning(3.0, 5.0, Policy.LEVELING)
        assert model.range_read_cost(shallow) <= model.range_read_cost(deep)


class TestWriteCost:
    def test_leveling_write_cost_grows_with_t(self, model):
        small = LSMTuning(3.0, 5.0, Policy.LEVELING)
        large = LSMTuning(30.0, 5.0, Policy.LEVELING)
        assert model.write_cost(large) > model.write_cost(small)

    def test_tiering_writes_cheaper_than_leveling(self, model):
        leveling = LSMTuning(10.0, 5.0, Policy.LEVELING)
        tiering = LSMTuning(10.0, 5.0, Policy.TIERING)
        assert model.write_cost(tiering) < model.write_cost(leveling)

    def test_policies_agree_at_t_equals_two(self, model):
        leveling = LSMTuning(2.0, 5.0, Policy.LEVELING)
        tiering = LSMTuning(2.0, 5.0, Policy.TIERING)
        assert model.write_cost(leveling) == pytest.approx(model.write_cost(tiering))

    def test_asymmetry_scales_write_cost(self):
        symmetric = LSMCostModel(SystemConfig(read_write_asymmetry=1.0))
        asymmetric = LSMCostModel(SystemConfig(read_write_asymmetry=3.0))
        tuning = LSMTuning(5.0, 5.0, Policy.LEVELING)
        assert asymmetric.write_cost(tuning) == pytest.approx(
            2.0 * symmetric.write_cost(tuning)
        )

    def test_matches_closed_form_for_leveling(self, model, system):
        tuning = LSMTuning(8.0, 5.0, Policy.LEVELING)
        levels = model.num_levels(tuning)
        expected = levels / system.entries_per_page * (8.0 - 1.0) / 2.0 * 2.0
        assert model.write_cost(tuning) == pytest.approx(expected)


class TestWorkloadCost:
    def test_is_dot_product_of_vector(self, model, leveling_tuning, w11):
        manual = float(np.dot(w11.as_array(), model.cost_vector(leveling_tuning)))
        assert model.workload_cost(w11, leveling_tuning) == pytest.approx(manual)

    def test_accepts_raw_sequences(self, model, leveling_tuning):
        cost = model.workload_cost([0.25, 0.25, 0.25, 0.25], leveling_tuning)
        assert cost > 0

    def test_rejects_wrong_length(self, model, leveling_tuning):
        with pytest.raises(ValueError):
            model.workload_cost([0.5, 0.5], leveling_tuning)

    def test_rejects_negative_weights(self, model, leveling_tuning):
        with pytest.raises(ValueError):
            model.workload_cost([-0.1, 0.4, 0.4, 0.3], leveling_tuning)

    def test_throughput_is_reciprocal_cost(self, model, leveling_tuning, w11):
        cost = model.workload_cost(w11, leveling_tuning)
        assert model.throughput(w11, leveling_tuning) == pytest.approx(1.0 / cost)

    def test_write_heavy_workload_prefers_tiering(self, model):
        write_heavy = expected_workload(4).workload  # 97% writes
        leveling = LSMTuning(5.0, 2.0, Policy.LEVELING)
        tiering = LSMTuning(5.0, 2.0, Policy.TIERING)
        assert model.workload_cost(write_heavy, tiering) < model.workload_cost(
            write_heavy, leveling
        )

    def test_read_heavy_workload_prefers_leveling(self, model):
        read_heavy = expected_workload(5).workload  # 98% point reads
        leveling = LSMTuning(5.0, 2.0, Policy.LEVELING)
        tiering = LSMTuning(5.0, 2.0, Policy.TIERING)
        assert model.workload_cost(read_heavy, leveling) < model.workload_cost(
            read_heavy, tiering
        )


class TestMotivatingExample:
    def test_range_shift_degrades_point_read_tuning(self, model):
        """Figure 1: a range-heavy shift hurts a tuning optimised for point reads."""
        expected = Workload(z0=0.20, z1=0.20, q=0.06, w=0.54)
        shifted = Workload(z0=0.02, z1=0.02, q=0.41, w=0.55)
        # A tuning that is good for the expected workload (large T, leveling).
        point_read_tuning = LSMTuning(30.0, 8.0, Policy.LEVELING)
        degradation = model.workload_cost(shifted, point_read_tuning) / model.workload_cost(
            expected, point_read_tuning
        )
        assert degradation > 1.05  # the shift visibly degrades performance
