"""Tests for the system-parameter configuration."""

import math

import pytest

from repro.lsm import SystemConfig, simulator_system
from repro.lsm.system import BITS_PER_BYTE, MIB


class TestValidation:
    def test_default_configuration_is_valid(self):
        config = SystemConfig()
        assert config.num_entries == 10_000_000

    def test_rejects_non_positive_entry_size(self):
        with pytest.raises(ValueError):
            SystemConfig(entry_size_bytes=0)

    def test_rejects_page_smaller_than_entry(self):
        with pytest.raises(ValueError):
            SystemConfig(entry_size_bytes=4096, page_size_bytes=1024)

    def test_rejects_non_positive_entries(self):
        with pytest.raises(ValueError):
            SystemConfig(num_entries=0)

    def test_rejects_non_positive_memory(self):
        with pytest.raises(ValueError):
            SystemConfig(total_memory_bytes=0)

    def test_rejects_negative_asymmetry(self):
        with pytest.raises(ValueError):
            SystemConfig(read_write_asymmetry=-0.5)

    def test_rejects_out_of_range_selectivity(self):
        with pytest.raises(ValueError):
            SystemConfig(range_selectivity=1.5)

    def test_rejects_tiny_size_ratio_bound(self):
        with pytest.raises(ValueError):
            SystemConfig(max_size_ratio=1.5)

    def test_rejects_memory_budget_with_no_buffer_room(self):
        # 1 KiB of memory for 10M entries cannot hold even one buffer page.
        with pytest.raises(ValueError):
            SystemConfig(total_memory_bytes=1024)


class TestDerivedQuantities:
    def test_entries_per_page(self):
        config = SystemConfig(entry_size_bytes=1024, page_size_bytes=4096)
        assert config.entries_per_page == 4

    def test_entries_per_page_never_zero(self):
        config = SystemConfig(entry_size_bytes=4096, page_size_bytes=4096)
        assert config.entries_per_page == 1

    def test_total_memory_bits(self):
        config = SystemConfig(total_memory_bytes=10 * MIB)
        assert config.total_memory_bits == 10 * MIB * BITS_PER_BYTE

    def test_total_bits_per_entry(self):
        config = SystemConfig()
        expected = config.total_memory_bits / config.num_entries
        assert config.total_bits_per_entry == pytest.approx(expected)

    def test_max_bits_per_entry_leaves_buffer_page(self):
        config = SystemConfig()
        leftover_bits = config.total_memory_bits - config.max_bits_per_entry * config.num_entries
        assert leftover_bits >= config.entries_per_page * config.entry_size_bits

    def test_data_size(self):
        config = SystemConfig()
        assert config.data_size_bytes == config.num_entries * config.entry_size_bytes


class TestMemorySplit:
    def test_filter_plus_buffer_equals_total(self):
        config = SystemConfig()
        bits = 5.0
        total = config.filter_memory_bits(bits) + config.buffer_memory_bits(bits)
        assert total == pytest.approx(config.total_memory_bits)

    def test_buffer_memory_rejects_oversized_filters(self):
        config = SystemConfig()
        with pytest.raises(ValueError):
            config.buffer_memory_bits(config.total_bits_per_entry + 1.0)

    def test_buffer_entries_consistent_with_bytes(self):
        config = SystemConfig()
        entries = config.buffer_entries(4.0)
        bytes_ = config.buffer_memory_bytes(4.0)
        assert entries == pytest.approx(bytes_ / config.entry_size_bytes)


class TestTreeShape:
    def test_num_levels_matches_formula(self):
        config = SystemConfig()
        bits = 5.0
        size_ratio = 10.0
        buffer_bits = config.buffer_memory_bits(bits)
        expected = math.ceil(
            math.log(config.num_entries * config.entry_size_bits / buffer_bits + 1)
            / math.log(size_ratio)
        )
        assert config.num_levels(size_ratio, bits) == expected

    def test_num_levels_decreases_with_size_ratio(self):
        config = SystemConfig()
        shallow = config.num_levels(50.0, 5.0)
        deep = config.num_levels(3.0, 5.0)
        assert shallow <= deep

    def test_num_levels_at_least_one(self):
        config = SystemConfig()
        assert config.num_levels(config.max_size_ratio, 0.0) >= 1

    def test_num_levels_rejects_small_ratio(self):
        with pytest.raises(ValueError):
            SystemConfig().num_levels(1.5, 5.0)

    def test_level_capacities_grow_by_t(self):
        config = SystemConfig()
        cap2 = config.level_capacity_entries(2, 10.0, 5.0)
        cap3 = config.level_capacity_entries(3, 10.0, 5.0)
        assert cap3 == pytest.approx(10.0 * cap2)

    def test_level_capacity_rejects_level_zero(self):
        with pytest.raises(ValueError):
            SystemConfig().level_capacity_entries(0, 10.0, 5.0)

    def test_full_tree_holds_all_entries(self):
        config = SystemConfig()
        full = config.full_tree_entries(10.0, 5.0)
        assert full >= config.num_entries


class TestScalingAndSerialisation:
    def test_scaled_preserves_bits_per_entry(self):
        config = SystemConfig()
        scaled = config.scaled(1_000_000)
        assert scaled.total_bits_per_entry == pytest.approx(config.total_bits_per_entry)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled(0)

    def test_round_trip_dict(self):
        config = SystemConfig(read_write_asymmetry=2.0, range_selectivity=0.001)
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_simulator_system_is_small(self):
        config = simulator_system(num_entries=5_000)
        assert config.num_entries == 5_000
        assert config.total_bits_per_entry == pytest.approx(16.0)

    def test_simulator_system_budget_configurable(self):
        config = simulator_system(num_entries=5_000, bits_per_entry_budget=24.0)
        assert config.total_bits_per_entry == pytest.approx(24.0)
