"""Tests for the LSM tuning configuration object."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm import ALL_POLICIES, LSMTuning, Policy, SystemConfig


class TestConstruction:
    def test_basic_construction(self):
        tuning = LSMTuning(size_ratio=10.0, bits_per_entry=5.0, policy=Policy.LEVELING)
        assert tuning.size_ratio == 10.0
        assert tuning.policy is Policy.LEVELING

    def test_policy_coerced_from_string(self):
        tuning = LSMTuning(size_ratio=10.0, bits_per_entry=5.0, policy="tiering")
        assert tuning.policy is Policy.TIERING

    def test_rejects_small_size_ratio(self):
        with pytest.raises(ValueError):
            LSMTuning(size_ratio=1.5, bits_per_entry=5.0, policy=Policy.LEVELING)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            LSMTuning(size_ratio=5.0, bits_per_entry=-1.0, policy=Policy.LEVELING)

    def test_is_hashable_and_comparable(self):
        a = LSMTuning(5.0, 3.0, Policy.LEVELING)
        b = LSMTuning(5.0, 3.0, Policy.LEVELING)
        assert a == b
        assert hash(a) == hash(b)


class TestDerivedMemory:
    def test_memory_split_adds_up(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 4.0, Policy.LEVELING)
        total = tuning.filter_memory_bits(system) + tuning.buffer_memory_bits(system)
        assert total == pytest.approx(system.total_memory_bits)

    def test_buffer_bytes_consistent(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 4.0, Policy.LEVELING)
        assert tuning.buffer_memory_bytes(system) == pytest.approx(
            tuning.buffer_memory_bits(system) / 8.0
        )

    def test_num_levels_delegates_to_system(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 4.0, Policy.LEVELING)
        assert tuning.num_levels(system) == system.num_levels(5.0, 4.0)

    def test_more_filter_memory_means_smaller_buffer(self, system: SystemConfig):
        small = LSMTuning(5.0, 2.0, Policy.LEVELING)
        large = LSMTuning(5.0, 10.0, Policy.LEVELING)
        assert large.buffer_memory_bits(system) < small.buffer_memory_bits(system)


class TestTransformations:
    def test_rounded_produces_integer_ratio(self):
        tuning = LSMTuning(7.6, 3.0, Policy.LEVELING)
        assert tuning.rounded().size_ratio == 8.0

    def test_rounded_never_below_two(self):
        tuning = LSMTuning(2.0, 3.0, Policy.LEVELING)
        assert tuning.rounded().size_ratio == 2.0

    def test_rounded_keeps_other_fields(self):
        tuning = LSMTuning(7.6, 3.0, Policy.TIERING)
        rounded = tuning.rounded()
        assert rounded.bits_per_entry == tuning.bits_per_entry
        assert rounded.policy is tuning.policy

    def test_with_policy(self):
        tuning = LSMTuning(5.0, 3.0, Policy.LEVELING)
        assert tuning.with_policy("tiering").policy is Policy.TIERING

    def test_clamped_respects_system_bounds(self, system: SystemConfig):
        tuning = LSMTuning(1000.0, 1000.0, Policy.LEVELING)
        clamped = tuning.clamped(system)
        assert clamped.size_ratio <= system.max_size_ratio
        assert clamped.bits_per_entry <= system.max_bits_per_entry

    def test_clamped_is_noop_inside_bounds(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 3.0, Policy.LEVELING)
        assert tuning.clamped(system) == tuning


class TestSerialisation:
    def test_dict_round_trip(self):
        tuning = LSMTuning(7.5, 3.25, Policy.TIERING)
        assert LSMTuning.from_dict(tuning.to_dict()) == tuning

    def test_describe_mentions_all_fields(self):
        tuning = LSMTuning(7.5, 3.25, Policy.TIERING)
        text = tuning.describe()
        assert "tiering" in text
        assert "7.5" in text
        assert "3.2" in text or "3.3" in text


class TestFluidBounds:
    def test_fluid_defaults_to_lazy_leveling_shape(self):
        tuning = LSMTuning(8.0, 4.0, Policy.FLUID)
        assert tuning.k_bound == 7.0  # T - 1
        assert tuning.z_bound == 1.0

    def test_classical_policies_normalise_bounds_to_none(self):
        tuning = LSMTuning(8.0, 4.0, Policy.LEVELING, k_bound=3.0, z_bound=2.0)
        assert tuning.k_bound is None
        assert tuning.z_bound is None
        # ... so equality is independent of how the tuning was built.
        assert tuning == LSMTuning(8.0, 4.0, Policy.LEVELING)

    def test_rejects_sub_unit_bounds(self):
        with pytest.raises(ValueError):
            LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=0.5)
        with pytest.raises(ValueError):
            LSMTuning(8.0, 4.0, Policy.FLUID, z_bound=0.0)

    def test_round_trip_preserves_bounds(self):
        tuning = LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=3.0, z_bound=2.0)
        assert LSMTuning.from_dict(tuning.to_dict()) == tuning

    def test_classical_serialisation_has_no_bound_keys(self):
        tuning = LSMTuning(8.0, 4.0, Policy.TIERING)
        assert set(tuning.to_dict()) == {"size_ratio", "bits_per_entry", "policy"}

    def test_rounded_clamps_bounds_to_the_deployable_range(self):
        tuning = LSMTuning(4.4, 4.0, Policy.FLUID, k_bound=7.6, z_bound=1.4)
        rounded = tuning.rounded()
        assert rounded.size_ratio == 4.0
        assert rounded.k_bound == 3.0  # min(round(7.6), T - 1)
        assert rounded.z_bound == 1.0

    def test_with_policy_materialises_and_drops_bounds(self):
        fluid = LSMTuning(8.0, 4.0, Policy.TIERING).with_policy(Policy.FLUID)
        assert fluid.k_bound == 7.0 and fluid.z_bound == 1.0
        back = fluid.with_policy("tiering")
        assert back.k_bound is None and back.z_bound is None

    def test_with_bounds_builds_a_fluid_copy(self):
        tuning = LSMTuning(8.0, 4.0, Policy.LEVELING).with_bounds(3.0, 2.0)
        assert tuning.policy is Policy.FLUID
        assert (tuning.k_bound, tuning.z_bound) == (3.0, 2.0)

    def test_describe_includes_the_bounds(self):
        text = LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=3.0, z_bound=2.0).describe()
        assert "K: 3" in text and "Z: 2" in text


class TestKBoundVectors:
    """Per-level ``k_bounds`` vectors: full Dostoevsky generality."""

    def test_vector_construction_normalises_to_floats(self):
        tuning = LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(4, 2, 1), z_bound=2)
        assert tuning.k_bounds == (4.0, 2.0, 1.0)
        assert tuning.z_bound == 2.0
        assert tuning.k_bound is None  # the vector is authoritative

    def test_vector_wins_over_scalar_when_both_given(self):
        with_both = LSMTuning(
            8.0, 4.0, Policy.FLUID, k_bound=5.0, k_bounds=(4.0, 2.0)
        )
        assert with_both == LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(4.0, 2.0))

    def test_rejects_empty_and_sub_unit_vectors(self):
        with pytest.raises(ValueError):
            LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=())
        with pytest.raises(ValueError):
            LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(2.0, 0.5))

    def test_classical_policies_drop_the_vector(self):
        tuning = LSMTuning(8.0, 4.0, Policy.LEVELING, k_bounds=(4.0, 2.0))
        assert tuning.k_bounds is None
        assert tuning == LSMTuning(8.0, 4.0, Policy.LEVELING)

    def test_vector_round_trip(self):
        tuning = LSMTuning(6.0, 4.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=2.0)
        assert LSMTuning.from_dict(tuning.to_dict()) == tuning

    def test_scalar_serialisation_has_no_vector_key(self):
        tuning = LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=3.0)
        assert "k_bounds" not in tuning.to_dict()

    def test_rounded_clamps_the_vector_elementwise(self):
        tuning = LSMTuning(4.4, 4.0, Policy.FLUID, k_bounds=(7.6, 2.4, 1.4), z_bound=1.4)
        rounded = tuning.rounded()
        assert rounded.size_ratio == 4.0
        assert rounded.k_bounds == (3.0, 2.0, 1.0)  # 7.6 capped at T - 1
        assert rounded.z_bound == 1.0

    def test_with_bounds_accepts_a_vector(self):
        tuning = LSMTuning(8.0, 4.0, Policy.LEVELING).with_bounds(
            k_bounds=(4.0, 1.0), z_bound=2.0
        )
        assert tuning.policy is Policy.FLUID
        assert tuning.k_bounds == (4.0, 1.0)

    def test_with_policy_drops_the_vector(self):
        fluid = LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(4.0, 2.0))
        assert fluid.with_policy("tiering").k_bounds is None

    def test_describe_shows_the_vector(self):
        text = LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0)).describe()
        assert "K: [4,2,1]" in text and "Z: 1" in text

    def test_vector_tunings_are_hashable(self):
        a = LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(4.0, 2.0))
        b = LSMTuning(8.0, 4.0, Policy.FLUID, k_bounds=(4.0, 2.0))
        assert a == b and hash(a) == hash(b)


class TestRoundedAtTheSmallestRatio:
    """Regression: the ``[1, T - 1]`` clamp at ``T = 2``, where the cap is 1.

    Built-in ``round`` sends the midpoint ``T = 2.5`` *down* to 2 (half to
    even), so the deployable bound range collapsed to the single point 1 and
    crushed every fluid bound the optimiser chose — a ``K = 1.5`` that
    legitimately deploys as ``(T = 3, K = 2)`` came out as ``(T = 2, K = 1)``.
    Half-up rounding keeps the documented "round up at the midpoint"
    behaviour and the clamp consistent.
    """

    def test_midpoint_ratio_rounds_up_not_to_the_collapsed_cap(self):
        rounded = LSMTuning(2.5, 3.0, Policy.FLUID, k_bound=1.5, z_bound=1.5).rounded()
        assert rounded.size_ratio == 3.0
        assert rounded.k_bound == 2.0
        assert rounded.z_bound == 2.0

    def test_at_exactly_t2_every_bound_clamps_to_one(self):
        rounded = LSMTuning(2.0, 3.0, Policy.FLUID, k_bound=7.0, z_bound=3.0).rounded()
        assert rounded.size_ratio == 2.0
        assert (rounded.k_bound, rounded.z_bound) == (1.0, 1.0)

    def test_t2_clamp_is_vector_aware(self):
        rounded = LSMTuning(
            2.2, 3.0, Policy.FLUID, k_bounds=(8.0, 2.0, 1.0), z_bound=4.0
        ).rounded()
        assert rounded.size_ratio == 2.0
        assert rounded.k_bounds == (1.0, 1.0, 1.0)
        assert rounded.z_bound == 1.0

    def test_rounded_vector_stays_valid_through_reconstruction(self):
        rounded = LSMTuning(2.5, 3.0, Policy.FLUID, k_bounds=(1.5, 1.5)).rounded()
        assert rounded.size_ratio == 3.0
        assert rounded.k_bounds == (2.0, 2.0)
        # replace() re-runs validation; the clamped copy must satisfy it.
        assert LSMTuning.from_dict(rounded.to_dict()) == rounded


#: Strategy for one fluid run bound in the deployable range.
_bounds = st.floats(min_value=1.0, max_value=64.0, allow_nan=False)


class TestSerialisationProperty:
    """Exhaustive to_dict/from_dict round-trip: all policies × scalar and
    vector bounds.  The online subsystem ships tunings through JSON (retuning
    decisions, events); drift there is caught here, at the tuning layer."""

    @given(
        policy=st.sampled_from(ALL_POLICIES),
        size_ratio=st.floats(min_value=2.0, max_value=100.0, allow_nan=False),
        bits=st.floats(min_value=0.0, max_value=16.0, allow_nan=False),
        k_bound=st.one_of(st.none(), _bounds),
        z_bound=st.one_of(st.none(), _bounds),
        k_vector=st.one_of(
            st.none(), st.lists(_bounds, min_size=1, max_size=6).map(tuple)
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_lossless(
        self, policy, size_ratio, bits, k_bound, z_bound, k_vector
    ):
        tuning = LSMTuning(
            size_ratio=size_ratio,
            bits_per_entry=bits,
            policy=policy,
            k_bound=k_bound,
            z_bound=z_bound,
            k_bounds=k_vector,
        )
        restored = LSMTuning.from_dict(tuning.to_dict())
        assert restored == tuning
        # And the serialised form itself is stable (no normalisation drift).
        assert restored.to_dict() == tuning.to_dict()

    @given(
        size_ratio=st.floats(min_value=2.0, max_value=100.0, allow_nan=False),
        k_vector=st.lists(_bounds, min_size=1, max_size=6).map(tuple),
        z_bound=_bounds,
    )
    @settings(max_examples=100, deadline=None)
    def test_rounded_vectors_survive_the_round_trip(
        self, size_ratio, k_vector, z_bound
    ):
        tuning = LSMTuning(
            size_ratio, 4.0, Policy.FLUID, k_bounds=k_vector, z_bound=z_bound
        ).rounded()
        cap = tuning.size_ratio - 1.0
        assert all(1.0 <= bound <= max(cap, 1.0) for bound in tuning.k_bounds)
        assert LSMTuning.from_dict(tuning.to_dict()) == tuning
