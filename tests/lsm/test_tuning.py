"""Tests for the LSM tuning configuration object."""

import pytest

from repro.lsm import LSMTuning, Policy, SystemConfig


class TestConstruction:
    def test_basic_construction(self):
        tuning = LSMTuning(size_ratio=10.0, bits_per_entry=5.0, policy=Policy.LEVELING)
        assert tuning.size_ratio == 10.0
        assert tuning.policy is Policy.LEVELING

    def test_policy_coerced_from_string(self):
        tuning = LSMTuning(size_ratio=10.0, bits_per_entry=5.0, policy="tiering")
        assert tuning.policy is Policy.TIERING

    def test_rejects_small_size_ratio(self):
        with pytest.raises(ValueError):
            LSMTuning(size_ratio=1.5, bits_per_entry=5.0, policy=Policy.LEVELING)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            LSMTuning(size_ratio=5.0, bits_per_entry=-1.0, policy=Policy.LEVELING)

    def test_is_hashable_and_comparable(self):
        a = LSMTuning(5.0, 3.0, Policy.LEVELING)
        b = LSMTuning(5.0, 3.0, Policy.LEVELING)
        assert a == b
        assert hash(a) == hash(b)


class TestDerivedMemory:
    def test_memory_split_adds_up(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 4.0, Policy.LEVELING)
        total = tuning.filter_memory_bits(system) + tuning.buffer_memory_bits(system)
        assert total == pytest.approx(system.total_memory_bits)

    def test_buffer_bytes_consistent(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 4.0, Policy.LEVELING)
        assert tuning.buffer_memory_bytes(system) == pytest.approx(
            tuning.buffer_memory_bits(system) / 8.0
        )

    def test_num_levels_delegates_to_system(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 4.0, Policy.LEVELING)
        assert tuning.num_levels(system) == system.num_levels(5.0, 4.0)

    def test_more_filter_memory_means_smaller_buffer(self, system: SystemConfig):
        small = LSMTuning(5.0, 2.0, Policy.LEVELING)
        large = LSMTuning(5.0, 10.0, Policy.LEVELING)
        assert large.buffer_memory_bits(system) < small.buffer_memory_bits(system)


class TestTransformations:
    def test_rounded_produces_integer_ratio(self):
        tuning = LSMTuning(7.6, 3.0, Policy.LEVELING)
        assert tuning.rounded().size_ratio == 8.0

    def test_rounded_never_below_two(self):
        tuning = LSMTuning(2.0, 3.0, Policy.LEVELING)
        assert tuning.rounded().size_ratio == 2.0

    def test_rounded_keeps_other_fields(self):
        tuning = LSMTuning(7.6, 3.0, Policy.TIERING)
        rounded = tuning.rounded()
        assert rounded.bits_per_entry == tuning.bits_per_entry
        assert rounded.policy is tuning.policy

    def test_with_policy(self):
        tuning = LSMTuning(5.0, 3.0, Policy.LEVELING)
        assert tuning.with_policy("tiering").policy is Policy.TIERING

    def test_clamped_respects_system_bounds(self, system: SystemConfig):
        tuning = LSMTuning(1000.0, 1000.0, Policy.LEVELING)
        clamped = tuning.clamped(system)
        assert clamped.size_ratio <= system.max_size_ratio
        assert clamped.bits_per_entry <= system.max_bits_per_entry

    def test_clamped_is_noop_inside_bounds(self, system: SystemConfig):
        tuning = LSMTuning(5.0, 3.0, Policy.LEVELING)
        assert tuning.clamped(system) == tuning


class TestSerialisation:
    def test_dict_round_trip(self):
        tuning = LSMTuning(7.5, 3.25, Policy.TIERING)
        assert LSMTuning.from_dict(tuning.to_dict()) == tuning

    def test_describe_mentions_all_fields(self):
        tuning = LSMTuning(7.5, 3.25, Policy.TIERING)
        text = tuning.describe()
        assert "tiering" in text
        assert "7.5" in text
        assert "3.2" in text or "3.3" in text


class TestFluidBounds:
    def test_fluid_defaults_to_lazy_leveling_shape(self):
        tuning = LSMTuning(8.0, 4.0, Policy.FLUID)
        assert tuning.k_bound == 7.0  # T - 1
        assert tuning.z_bound == 1.0

    def test_classical_policies_normalise_bounds_to_none(self):
        tuning = LSMTuning(8.0, 4.0, Policy.LEVELING, k_bound=3.0, z_bound=2.0)
        assert tuning.k_bound is None
        assert tuning.z_bound is None
        # ... so equality is independent of how the tuning was built.
        assert tuning == LSMTuning(8.0, 4.0, Policy.LEVELING)

    def test_rejects_sub_unit_bounds(self):
        with pytest.raises(ValueError):
            LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=0.5)
        with pytest.raises(ValueError):
            LSMTuning(8.0, 4.0, Policy.FLUID, z_bound=0.0)

    def test_round_trip_preserves_bounds(self):
        tuning = LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=3.0, z_bound=2.0)
        assert LSMTuning.from_dict(tuning.to_dict()) == tuning

    def test_classical_serialisation_has_no_bound_keys(self):
        tuning = LSMTuning(8.0, 4.0, Policy.TIERING)
        assert set(tuning.to_dict()) == {"size_ratio", "bits_per_entry", "policy"}

    def test_rounded_clamps_bounds_to_the_deployable_range(self):
        tuning = LSMTuning(4.4, 4.0, Policy.FLUID, k_bound=7.6, z_bound=1.4)
        rounded = tuning.rounded()
        assert rounded.size_ratio == 4.0
        assert rounded.k_bound == 3.0  # min(round(7.6), T - 1)
        assert rounded.z_bound == 1.0

    def test_with_policy_materialises_and_drops_bounds(self):
        fluid = LSMTuning(8.0, 4.0, Policy.TIERING).with_policy(Policy.FLUID)
        assert fluid.k_bound == 7.0 and fluid.z_bound == 1.0
        back = fluid.with_policy("tiering")
        assert back.k_bound is None and back.z_bound is None

    def test_with_bounds_builds_a_fluid_copy(self):
        tuning = LSMTuning(8.0, 4.0, Policy.LEVELING).with_bounds(3.0, 2.0)
        assert tuning.policy is Policy.FLUID
        assert (tuning.k_bound, tuning.z_bound) == (3.0, 2.0)

    def test_describe_includes_the_bounds(self):
        text = LSMTuning(8.0, 4.0, Policy.FLUID, k_bound=3.0, z_bound=2.0).describe()
        assert "K: 3" in text and "Z: 2" in text
