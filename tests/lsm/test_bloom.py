"""Tests for the Bloom-filter model (uniform and Monkey allocation)."""

import math

import numpy as np
import pytest

from repro.lsm import (
    monkey_bits_per_level,
    monkey_false_positive_rates,
    optimal_hash_count,
    uniform_false_positive_rate,
)
from repro.lsm.bloom import LN2_SQUARED


class TestUniformFalsePositiveRate:
    def test_zero_bits_gives_certain_false_positive(self):
        assert uniform_false_positive_rate(0.0) == 1.0

    def test_matches_closed_form(self):
        bits = 10.0
        assert uniform_false_positive_rate(bits) == pytest.approx(
            math.exp(-bits * LN2_SQUARED)
        )

    def test_decreases_with_more_bits(self):
        rates = [uniform_false_positive_rate(b) for b in (1, 2, 5, 10, 20)]
        assert rates == sorted(rates, reverse=True)

    def test_never_exceeds_one(self):
        assert uniform_false_positive_rate(0.0) <= 1.0
        assert uniform_false_positive_rate(100.0) <= 1.0

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            uniform_false_positive_rate(-1.0)


class TestOptimalHashCount:
    def test_at_least_one_hash(self):
        assert optimal_hash_count(0.0) == 1
        assert optimal_hash_count(0.5) == 1

    def test_ten_bits_gives_seven_hashes(self):
        assert optimal_hash_count(10.0) == 7

    def test_grows_with_bits(self):
        assert optimal_hash_count(20.0) > optimal_hash_count(5.0)


class TestMonkeyRates:
    def test_shape_matches_levels(self):
        rates = monkey_false_positive_rates(10.0, 5.0, 4)
        assert rates.shape == (4,)

    def test_all_rates_within_unit_interval(self):
        rates = monkey_false_positive_rates(10.0, 5.0, 6)
        assert np.all(rates >= 0.0)
        assert np.all(rates <= 1.0)

    def test_smaller_levels_get_lower_rates(self):
        # Monkey skews memory to smaller levels: f_1 < f_2 < ... < f_L.
        rates = monkey_false_positive_rates(10.0, 8.0, 5)
        assert np.all(np.diff(rates) >= 0.0)

    def test_rates_drop_with_more_memory(self):
        low = monkey_false_positive_rates(10.0, 2.0, 4)
        high = monkey_false_positive_rates(10.0, 10.0, 4)
        assert np.all(high <= low)

    def test_zero_memory_saturates_deepest_level(self):
        # Equation (11) with zero filter memory: the closed form saturates the
        # deepest (largest) level at a false-positive rate of 1, while the
        # clipped formula still assigns sub-unit rates to smaller levels.
        rates = monkey_false_positive_rates(10.0, 0.0, 4)
        assert rates[-1] == 1.0
        assert np.all(rates <= 1.0)

    def test_consecutive_levels_scale_by_t(self):
        # Below saturation, Monkey rates satisfy f_{i+1} = T * f_i.
        size_ratio = 4.0
        rates = monkey_false_positive_rates(size_ratio, 12.0, 5)
        interior = rates[rates < 1.0]
        ratios = interior[1:] / interior[:-1]
        assert np.allclose(ratios, size_ratio, rtol=1e-9)

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            monkey_false_positive_rates(1.0, 5.0, 3)
        with pytest.raises(ValueError):
            monkey_false_positive_rates(10.0, 5.0, 0)
        with pytest.raises(ValueError):
            monkey_false_positive_rates(10.0, -1.0, 3)


class TestMonkeyBitsPerLevel:
    def test_inverts_rates(self):
        size_ratio, bits, levels = 5.0, 8.0, 4
        rates = monkey_false_positive_rates(size_ratio, bits, levels)
        per_level = monkey_bits_per_level(size_ratio, bits, levels, [1.0] * levels)
        recovered = np.exp(-per_level * LN2_SQUARED)
        assert np.allclose(recovered[rates < 1.0], rates[rates < 1.0], rtol=1e-9)

    def test_saturated_levels_get_zero_bits(self):
        per_level = monkey_bits_per_level(5.0, 0.0, 3, [1.0, 1.0, 1.0])
        # The deepest level is saturated (rate 1) and therefore keeps no filter.
        assert per_level[-1] == 0.0
        assert np.all(per_level >= 0.0)

    def test_smaller_levels_get_more_bits(self):
        per_level = monkey_bits_per_level(5.0, 8.0, 4, [1.0] * 4)
        assert np.all(np.diff(per_level) <= 0.0)

    def test_rejects_mismatched_level_entries(self):
        with pytest.raises(ValueError):
            monkey_bits_per_level(5.0, 8.0, 4, [1.0, 1.0])
