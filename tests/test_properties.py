"""Property-based tests (hypothesis) for the core invariants.

These cover the mathematical heart of the reproduction: the cost model's
monotonicity and positivity, KL-divergence properties, the uncertainty
region's worst-case machinery, Bloom filters' no-false-negative guarantee and
the LSM simulator's key-preservation invariants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import UncertaintyRegion
from repro.lsm import LSMCostModel, LSMTuning, Policy, SystemConfig, simulator_system
from repro.storage import BloomFilter, LSMTree, SortedRun
from repro.workloads import Workload, kl_divergence

_SYSTEM = SystemConfig()
_MODEL = LSMCostModel(_SYSTEM)

#: Strategy for legal design points of the default system.
size_ratios = st.floats(min_value=2.0, max_value=100.0, allow_nan=False)
bits = st.floats(min_value=0.0, max_value=_SYSTEM.max_bits_per_entry - 0.01, allow_nan=False)
policies = st.sampled_from(list(Policy))


@st.composite
def tunings(draw) -> LSMTuning:
    return LSMTuning(
        size_ratio=draw(size_ratios), bits_per_entry=draw(bits), policy=draw(policies)
    )


@st.composite
def workloads(draw) -> Workload:
    raw = draw(
        st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=4, max_size=4)
    )
    arr = np.asarray(raw)
    return Workload.from_array(arr / arr.sum())


class TestCostModelProperties:
    @given(tuning=tunings())
    @settings(max_examples=60, deadline=None)
    def test_cost_vector_always_positive_and_finite(self, tuning):
        vector = _MODEL.cost_vector(tuning)
        assert np.all(vector > 0)
        assert np.all(np.isfinite(vector))

    @given(tuning=tunings(), workload=workloads())
    @settings(max_examples=60, deadline=None)
    def test_workload_cost_is_convex_combination_of_components(self, tuning, workload):
        vector = _MODEL.cost_vector(tuning)
        cost = _MODEL.workload_cost(workload, tuning)
        assert vector.min() - 1e-9 <= cost <= vector.max() + 1e-9

    @given(size_ratio=size_ratios, policy=policies, low=bits, high=bits)
    @settings(max_examples=60, deadline=None)
    def test_empty_read_cost_monotone_in_filter_memory(self, size_ratio, policy, low, high):
        assume(abs(high - low) > 1e-6)
        lo, hi = sorted((low, high))
        cheap = LSMTuning(size_ratio, hi, policy)
        expensive = LSMTuning(size_ratio, lo, policy)
        assert _MODEL.empty_read_cost(cheap) <= _MODEL.empty_read_cost(expensive) + 1e-9

    @given(tuning=tunings())
    @settings(max_examples=40, deadline=None)
    def test_non_empty_read_at_least_one_io(self, tuning):
        assert _MODEL.non_empty_read_cost(tuning) >= 1.0 - 1e-9

    @given(tuning=tunings())
    @settings(max_examples=40, deadline=None)
    def test_tiering_reads_cost_at_least_leveling(self, tuning):
        leveled = tuning.with_policy(Policy.LEVELING)
        tiered = tuning.with_policy(Policy.TIERING)
        assert _MODEL.empty_read_cost(tiered) >= _MODEL.empty_read_cost(leveled) - 1e-9
        assert _MODEL.write_cost(tiered) <= _MODEL.write_cost(leveled) + 1e-9

    @given(tuning=tunings())
    @settings(max_examples=40, deadline=None)
    def test_lazy_leveling_sits_between_the_classical_policies(self, tuning):
        """Component-wise, lazy leveling is sandwiched between its parents."""
        leveled = _MODEL.cost_vector(tuning.with_policy(Policy.LEVELING))
        tiered = _MODEL.cost_vector(tuning.with_policy(Policy.TIERING))
        lazy = _MODEL.cost_vector(tuning.with_policy(Policy.LAZY_LEVELING))
        # Reads (Z0, Z1, Q): leveling <= lazy <= tiering.
        assert np.all(leveled[:3] - 1e-9 <= lazy[:3])
        assert np.all(lazy[:3] <= tiered[:3] + 1e-9)
        # Writes: tiering <= lazy <= leveling.
        assert tiered[3] - 1e-9 <= lazy[3] <= leveled[3] + 1e-9

    @given(tuning=tunings())
    @settings(max_examples=30, deadline=None)
    def test_cost_matrix_cell_matches_cost_vector(self, tuning):
        matrix = _MODEL.cost_matrix(
            np.array([tuning.size_ratio]),
            np.array([tuning.bits_per_entry]),
            tuning.policy,
        )
        np.testing.assert_allclose(
            matrix[0, 0], _MODEL.cost_vector(tuning), atol=1e-9, rtol=1e-9
        )


class TestKLProperties:
    @given(p=workloads(), q=workloads())
    @settings(max_examples=80, deadline=None)
    def test_kl_divergence_non_negative(self, p, q):
        assert kl_divergence(p.as_array(), q.as_array()) >= -1e-12

    @given(p=workloads())
    @settings(max_examples=40, deadline=None)
    def test_kl_divergence_zero_on_identity(self, p):
        assert kl_divergence(p.as_array(), p.as_array()) == pytest.approx(0.0, abs=1e-9)

    @given(p=workloads(), q=workloads(), weight=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_mix_stays_a_distribution(self, p, q, weight):
        mixed = p.mix(q, weight)
        assert sum(mixed.as_tuple()) == pytest.approx(1.0)
        assert min(mixed.as_tuple()) >= 0.0


class TestUncertaintyRegionProperties:
    @given(
        expected=workloads(),
        rho=st.floats(min_value=0.0, max_value=3.0),
        costs=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=4, max_size=4),
    )
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_worst_case_is_feasible_and_dominates_nominal(self, expected, rho, costs):
        region = UncertaintyRegion(expected=expected, rho=rho)
        cost_vector = np.asarray(costs)
        worst = region.worst_case_workload(cost_vector)
        assert region.contains(worst, tolerance=1e-5)
        nominal_cost = float(np.dot(expected.as_array(), cost_vector))
        assert region.worst_case_cost(cost_vector) >= nominal_cost - 1e-8

    @given(
        expected=workloads(),
        costs=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=4, max_size=4),
        rho_small=st.floats(min_value=0.0, max_value=1.0),
        rho_large=st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_worst_case_cost_monotone_in_rho(self, expected, costs, rho_small, rho_large):
        cost_vector = np.asarray(costs)
        small = UncertaintyRegion(expected=expected, rho=rho_small).worst_case_cost(cost_vector)
        large = UncertaintyRegion(expected=expected, rho=rho_large).worst_case_cost(cost_vector)
        assert large >= small - 1e-7


class TestBloomFilterProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=300, unique=True),
        bits=st.floats(min_value=2.0, max_value=16.0),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives(self, keys, bits, seed):
        bf = BloomFilter(expected_entries=len(keys), bits_per_entry=bits, seed=seed)
        bf.add_many(np.asarray(keys, dtype=np.uint64))
        assert all(bf.might_contain(key) for key in keys)


class TestSortedRunProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=400, unique=True)
    )
    @settings(max_examples=40, deadline=None)
    def test_every_key_is_found_and_lookup_reads_at_most_one_page(self, keys):
        run = SortedRun(
            np.array(sorted(keys), dtype=np.int64), entries_per_page=4, bits_per_entry=8.0
        )
        for key in keys:
            found, _, pages = run.lookup(key)
            assert found
            assert pages == 1

    @given(
        keys_a=st.lists(st.integers(0, 5_000), min_size=1, max_size=200, unique=True),
        keys_b=st.lists(st.integers(0, 5_000), min_size=1, max_size=200, unique=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_key_set(self, keys_a, keys_b):
        run_a = SortedRun(np.array(sorted(keys_a), dtype=np.int64), entries_per_page=4)
        run_b = SortedRun(np.array(sorted(keys_b), dtype=np.int64), entries_per_page=4)
        merged = SortedRun.merge([run_a, run_b], entries_per_page=4)
        assert set(merged.keys.tolist()) == set(keys_a) | set(keys_b)


class TestLSMTreeProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=400),
        policy=policies,
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_inserted_key_is_readable(self, keys, policy):
        system = simulator_system(num_entries=1_000)
        tree = LSMTree(LSMTuning(3.0, 4.0, policy), system)
        for key in keys:
            tree.put(key)
        for key in set(keys):
            assert tree.get(key)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=300),
        policy=policies,
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_entry_count_bounded_by_insertions(self, keys, policy):
        """Re-inserted keys may transiently exist in several runs (one version
        per run) until compaction consolidates them, so the resident entry
        count is bounded by the unique keys below and the total puts above."""
        system = simulator_system(num_entries=1_000)
        tree = LSMTree(LSMTuning(4.0, 4.0, policy), system)
        for key in keys:
            tree.put(key)
        assert len(set(keys)) <= tree.num_entries <= len(keys)
